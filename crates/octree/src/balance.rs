//! 2:1 balance enforcement.
//!
//! The paper (section IV-A) relies on the 2:1 balance constraint — any two
//! leaves that touch differ by at most one refinement level — to keep the
//! octant-to-patch scatter down to exactly three cases (same level, one
//! coarser, one finer). Dendro enforces *complete* balance (across faces,
//! edges and corners), which we make the default; face-only balance is
//! offered for the ablation benchmark.
//!
//! Two algorithms are provided:
//!
//! * [`balance_octree`] — the classic **ripple** algorithm: iteratively
//!   insert, for every leaf, the coarse neighbors its level implies
//!   (neighbors of its parent), linearize keeping the finest, and repeat
//!   until a fixed point. Simple and robust; cost `O(n log n)` per sweep
//!   with at most `MAX_LEVEL` sweeps.
//! * [`balance_octree_bucket`] — a **level-bucket** variant that processes
//!   leaves from finest to coarsest level in one pass, seeding balance
//!   requests only downward in level (Isaac, Burstedde & Ghattas, IPDPS
//!   2012 style). Produces the same tree; benched against ripple in the
//!   `octree_ops` criterion bench (DESIGN.md §5).

use crate::build::{complete_octree, is_complete_linear, linearize};
use crate::key::MortonKey;

/// Which neighbor set participates in the balance constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BalanceMode {
    /// Only face-adjacent leaves are constrained.
    Face,
    /// Faces, edges and corners (complete balance; Dendro default).
    Full,
}

impl BalanceMode {
    fn neighbors(&self, k: &MortonKey) -> Vec<MortonKey> {
        match self {
            BalanceMode::Face => k.face_neighbors(),
            BalanceMode::Full => k.all_neighbors(),
        }
    }
}

/// Enforce 2:1 balance on a complete linear octree via ripple propagation.
///
/// The input must be a complete linear octree (as produced by
/// [`complete_octree`]); the output is the coarsest complete linear octree
/// that refines the input and satisfies the balance constraint.
pub fn balance_octree(leaves: &[MortonKey], mode: BalanceMode) -> Vec<MortonKey> {
    let mut tree: Vec<MortonKey> = leaves.to_vec();
    linearize(&mut tree);
    // Active set: leaves whose balance requests have not been propagated
    // yet. Round 1 processes everything; later rounds only the leaves newly
    // created by the previous round, so total work is proportional to the
    // output size rather than rounds × tree size.
    let mut active: Vec<MortonKey> = tree.clone();
    loop {
        // Each active leaf at level l demands its parent-level neighbor
        // regions exist at level ≥ l−1; inserting those keys (keep-finest)
        // splits any coarser leaf covering them.
        let mut requests: Vec<MortonKey> = Vec::with_capacity(active.len() * 4);
        let mut parents: Vec<MortonKey> = active.iter().filter_map(|k| k.parent()).collect();
        parents.sort_unstable();
        parents.dedup();
        for p in &parents {
            requests.extend(mode.neighbors(p));
        }
        if requests.is_empty() {
            break;
        }
        requests.sort_unstable();
        requests.dedup();
        // Keep only requests that actually split an existing coarser leaf
        // (a request already covered at an equal-or-finer level is a no-op).
        requests.retain(|r| match find_covering_leaf_sorted(&tree, r) {
            Some(cov) => cov.level() < r.level(),
            None => false,
        });
        if requests.is_empty() {
            break;
        }
        let mut merged = tree.clone();
        merged.extend(requests);
        linearize(&mut merged);
        let merged = complete_octree(merged);
        // New leaves = merged \ tree (both sorted).
        active = diff_sorted(&merged, &tree);
        if active.is_empty() {
            break;
        }
        tree = merged;
    }
    tree
}

/// Covering leaf lookup in a *sorted* leaf vector (see
/// [`find_covering_leaf`] for the BTreeSet variant used by `is_balanced`).
fn find_covering_leaf_sorted(leaves: &[MortonKey], probe: &MortonKey) -> Option<MortonKey> {
    let dfd = probe.deepest_first_descendant();
    let idx = match leaves.binary_search(&dfd) {
        Ok(i) => i,
        Err(0) => return None,
        Err(i) => i - 1,
    };
    let cand = leaves[idx];
    cand.contains(probe).then_some(cand)
}

/// Elements of sorted `a` not present in sorted `b`.
fn diff_sorted(a: &[MortonKey], b: &[MortonKey]) -> Vec<MortonKey> {
    let mut out = Vec::new();
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            out.push(x);
        }
    }
    out
}

/// Level-bucket 2:1 balance: one pass from the finest level down.
///
/// Equivalent result to [`balance_octree`]; asymptotically fewer linearize
/// passes (one per level instead of one per ripple round).
pub fn balance_octree_bucket(leaves: &[MortonKey], mode: BalanceMode) -> Vec<MortonKey> {
    let mut tree: Vec<MortonKey> = leaves.to_vec();
    linearize(&mut tree);
    let max_level = tree.iter().map(|k| k.level()).max().unwrap_or(0);
    // Bucket required keys by level; process finest first so the balance
    // requirement cascades down exactly once per level.
    let mut required: Vec<Vec<MortonKey>> = vec![Vec::new(); max_level as usize + 1];
    for k in &tree {
        required[k.level() as usize].push(*k);
    }
    let mut all: Vec<MortonKey> = Vec::with_capacity(tree.len() * 2);
    for l in (1..=max_level as usize).rev() {
        let keys = std::mem::take(&mut required[l]);
        let mut parents_seen: Vec<MortonKey> = Vec::new();
        for k in keys {
            all.push(k);
            let p = k.parent().expect("level >= 1");
            parents_seen.push(p);
        }
        parents_seen.sort_unstable();
        parents_seen.dedup();
        for p in parents_seen {
            for n in mode.neighbors(&p) {
                // Neighbor of the parent must exist at level >= l-1: request
                // it at the parent's level; it lands in bucket l-1.
                required[l - 1].push(n);
            }
        }
        required[l - 1].sort_unstable();
        required[l - 1].dedup();
    }
    all.extend(std::mem::take(&mut required[0]));
    linearize(&mut all);
    let t = complete_octree(all);
    // The single downward pass can in rare configurations still leave a
    // violation across the completion octants; fall back to ripple to
    // guarantee the postcondition (usually a no-op).
    if is_balanced(&t, mode) {
        t
    } else {
        balance_octree(&t, mode)
    }
}

/// Check the 2:1 balance property of a complete linear octree.
pub fn is_balanced(leaves: &[MortonKey], mode: BalanceMode) -> bool {
    debug_assert!(is_complete_linear(leaves));
    let set: std::collections::BTreeSet<MortonKey> = leaves.iter().copied().collect();
    for k in leaves {
        // A violation exists iff some neighbor region of k is occupied by a
        // leaf at level <= k.level() - 2, i.e. the neighbor of k's
        // *grandparent*-sized region at k's level is covered by a strict
        // ancestor of that region's grandparent... Simpler check: for each
        // same-level neighbor n of k, find the leaf covering n's anchor; its
        // level must be >= k.level() - 1. Conversely leaves finer than k
        // inside n are allowed (they constrain k, checked from their side).
        for n in mode.neighbors(k) {
            if let Some(covering) = find_covering_leaf(&set, &n) {
                if (covering.level() as i32) < k.level() as i32 - 1 {
                    return false;
                }
            }
        }
    }
    true
}

/// Find the leaf in `set` that covers octant `probe`'s anchor region
/// (either an ancestor of `probe`, `probe` itself, or `None` if only finer
/// leaves cover it — which cannot violate balance from this side).
fn find_covering_leaf(
    set: &std::collections::BTreeSet<MortonKey>,
    probe: &MortonKey,
) -> Option<MortonKey> {
    // The covering leaf, if coarser or equal, is the greatest key <= the
    // probe's deepest-first-descendant.
    let dfd = probe.deepest_first_descendant();
    let cand = set.range(..=dfd).next_back()?;
    if cand.contains(probe) {
        Some(*cand)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::octree_from_points;
    use crate::key::LATTICE;

    fn deep_corner_tree(depth: u8) -> Vec<MortonKey> {
        // Refine repeatedly toward the domain center inside the first
        // level-1 octant: the deep leaves end up face-adjacent to the
        // other level-1 octants, a gross 2:1 violation for depth >= 3.
        assert!(depth >= 2);
        let root_ch = MortonKey::root().children();
        let mut leaves: Vec<MortonKey> = root_ch[1..].to_vec();
        let mut k = root_ch[0];
        for _ in 1..depth {
            let ch = k.children();
            leaves.extend_from_slice(&ch[..7]);
            k = ch[7];
        }
        leaves.push(k);
        leaves.sort_unstable();
        leaves
    }

    #[test]
    fn corner_refined_tree_is_unbalanced_then_balanced() {
        let t = deep_corner_tree(5);
        assert!(is_complete_linear(&t));
        assert!(!is_balanced(&t, BalanceMode::Full));
        let b = balance_octree(&t, BalanceMode::Full);
        assert!(is_complete_linear(&b));
        assert!(is_balanced(&b, BalanceMode::Full));
        // Balancing only refines: every input leaf is covered by leaves at
        // the same or finer level.
        for k in &t {
            assert!(b.iter().any(|l| k.contains(l)));
        }
    }

    #[test]
    fn balanced_tree_is_fixed_point() {
        let t = deep_corner_tree(4);
        let b = balance_octree(&t, BalanceMode::Full);
        let b2 = balance_octree(&b, BalanceMode::Full);
        assert_eq!(b, b2);
    }

    #[test]
    fn bucket_and_ripple_agree() {
        let t = deep_corner_tree(6);
        let r = balance_octree(&t, BalanceMode::Full);
        let b = balance_octree_bucket(&t, BalanceMode::Full);
        assert!(is_balanced(&b, BalanceMode::Full));
        assert_eq!(r, b);
    }

    #[test]
    fn face_balance_is_weaker_than_full() {
        let t = deep_corner_tree(6);
        let f = balance_octree(&t, BalanceMode::Face);
        let full = balance_octree(&t, BalanceMode::Full);
        assert!(is_balanced(&f, BalanceMode::Face));
        assert!(f.len() <= full.len());
    }

    #[test]
    fn uniform_tree_already_balanced() {
        let mut leaves = vec![];
        for c in MortonKey::root().children() {
            leaves.extend(c.children());
        }
        leaves.sort_unstable();
        assert!(is_balanced(&leaves, BalanceMode::Full));
        assert_eq!(balance_octree(&leaves, BalanceMode::Full), leaves);
    }

    #[test]
    fn point_cloud_tree_balances() {
        // Diagonal line of points => adaptive tree along the diagonal.
        let pts: Vec<[u32; 3]> = (0..64u32)
            .map(|i| [i * (LATTICE / 64), i * (LATTICE / 64), i * (LATTICE / 64)])
            .collect();
        let t = octree_from_points(&pts, 1, 8);
        let b = balance_octree(&t, BalanceMode::Full);
        assert!(is_complete_linear(&b));
        assert!(is_balanced(&b, BalanceMode::Full));
    }

    #[test]
    fn balance_preserves_completeness() {
        let t = deep_corner_tree(8);
        let b = balance_octree_bucket(&t, BalanceMode::Full);
        assert!(is_complete_linear(&b));
    }
}
