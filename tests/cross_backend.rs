//! Cross-backend and cross-implementation consistency (the Fig. 21
//! property at integration scope).

use gw_bssn::init::{LinearWaveData, PunctureData};
use gw_core::backend::RhsKind;
use gw_core::solver::{GwSolver, SolverConfig};
use gw_expr::schedule::ScheduleStrategy;
use gw_integration_tests::{adaptive_mesh, uniform_mesh};
use gw_octree::Domain;

fn evolve(
    mesh_builder: impl Fn() -> gw_mesh::Mesh,
    use_gpu: bool,
    rhs_kind: RhsKind,
    steps: usize,
) -> gw_mesh::Field {
    let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
    let mut s = GwSolver::new(
        SolverConfig { use_gpu, rhs_kind, ..Default::default() },
        mesh_builder(),
        |p, out| wave.evaluate(p, out),
    );
    for _ in 0..steps {
        s.step();
    }
    s.state()
}

#[test]
fn gpu_equals_cpu_on_adaptive_grid() {
    let domain = Domain::centered_cube(8.0);
    let a = evolve(|| adaptive_mesh(domain), false, RhsKind::Pointwise, 3);
    let b = evolve(|| adaptive_mesh(domain), true, RhsKind::Pointwise, 3);
    for (x, y) in a.as_slice().iter().zip(b.as_slice().iter()) {
        assert_eq!(x, y, "CPU and simulated-GPU evolutions must agree bitwise");
    }
}

#[test]
fn all_codegen_strategies_agree_in_evolution() {
    let domain = Domain::centered_cube(8.0);
    let reference = evolve(|| uniform_mesh(domain, 2), false, RhsKind::Pointwise, 2);
    for strat in ScheduleStrategy::all() {
        let got = evolve(|| uniform_mesh(domain, 2), false, RhsKind::Generated(strat), 2);
        for (x, y) in reference.as_slice().iter().zip(got.as_slice().iter()) {
            assert!((x - y).abs() < 1e-9 * (1.0 + x.abs()), "{strat:?} diverged: {x} vs {y}");
        }
    }
}

#[test]
fn generated_gpu_strong_field_matches_handwritten_cpu() {
    // The hardest cross: strong-field punctures, generated tape on the
    // simulated device vs handwritten on host.
    let domain = Domain::centered_cube(16.0);
    let data = PunctureData::binary(2.0, 6.0);
    let run = |use_gpu: bool, kind: RhsKind| {
        let d = data.clone();
        let mut s = GwSolver::new(
            SolverConfig { use_gpu, rhs_kind: kind, ..Default::default() },
            uniform_mesh(domain, 3),
            move |p, out| d.evaluate(p, out),
        );
        for _ in 0..2 {
            s.step();
        }
        s.state()
    };
    let cpu_hand = run(false, RhsKind::Pointwise);
    let gpu_gen = run(true, RhsKind::Generated(ScheduleStrategy::BinaryReduce));
    assert!(cpu_hand.linf_all().is_finite(), "strong-field run must stay finite");
    for (x, y) in cpu_hand.as_slice().iter().zip(gpu_gen.as_slice().iter()) {
        assert!(
            (x - y).abs() < 1e-8 * (1.0 + x.abs()),
            "strong-field cross-check failed: {x} vs {y}"
        );
    }
}

#[test]
fn device_counters_consistent_with_work() {
    let domain = Domain::centered_cube(8.0);
    let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
    let mut s = GwSolver::new(
        SolverConfig { use_gpu: true, ..Default::default() },
        uniform_mesh(domain, 2),
        |p, out| wave.evaluate(p, out),
    );
    let c0 = s.backend.counters().unwrap();
    s.step();
    let c1 = s.backend.counters().unwrap();
    let d = c1.delta_since(&c0);
    // One RK4 step = 4 RHS evals: 4 × (o2p + boundary + rhs) + 7 axpy +
    // 1 copy + sync ⇒ at least 12 launches.
    assert!(d.launches >= 12, "launches {}", d.launches);
    // Global loads per eval at least the 24 patches per octant.
    let n = s.mesh.n_octants();
    let min_loads = 4 * n as u64 * 24 * 2197 * 8;
    assert!(d.global_load_bytes >= min_loads);
    // No host↔device traffic during steps (Algorithm 1 discipline).
    assert_eq!(d.h2d_bytes, 0);
    assert_eq!(d.d2h_bytes, 0);
}
