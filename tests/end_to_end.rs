//! End-to-end integration: grid → initial data → evolution → extraction.

use gw_bssn::init::LinearWaveData;
use gw_core::solver::{GwSolver, SolverConfig};
use gw_core::unigrid::unigrid_solver;
use gw_expr::symbols::var;
use gw_integration_tests::uniform_mesh;
use gw_octree::Domain;
use gw_waveform::{lebedev::product_rule, psi4_from_strain, ExtractionSphere, ModeExtractor};

#[test]
fn full_pipeline_produces_wave_signal() {
    let domain = Domain::centered_cube(8.0);
    let wave = LinearWaveData::new(1e-3, -2.0, 1.5, 1.2);
    let mesh = uniform_mesh(domain, 3);
    let mut solver =
        GwSolver::new(SolverConfig { extract_every: 1, ..Default::default() }, mesh, |p, out| {
            wave.evaluate(p, out)
        });
    let sphere = ExtractionSphere::new(4.0, product_rule(6, 12));
    solver.add_extractor(ModeExtractor::new(sphere, vec![(2, 2), (2, -2), (3, 3)]));
    for _ in 0..8 {
        solver.step();
    }
    let h22 = solver.extractors[0].mode(2, 2).unwrap();
    assert_eq!(h22.len(), 8);
    // Wave content present in the (2, ±2) channels, negligible in (3,3).
    let p22: f64 = h22.values.iter().map(|v| v.norm()).sum();
    let p33: f64 = solver.extractors[0].mode(3, 3).unwrap().values.iter().map(|v| v.norm()).sum();
    assert!(p22 > 1e-6, "22 power {p22}");
    assert!(p22 > 20.0 * p33, "mode leakage: 22 {p22} vs 33 {p33}");
    // Ψ₄ from the strain series exists and is finite.
    let psi4 = psi4_from_strain(h22);
    assert_eq!(psi4.len(), 6);
    assert!(psi4.values.iter().all(|v| v.re.is_finite() && v.im.is_finite()));
}

#[test]
fn amplitude_scaling_is_linear() {
    // Double the initial amplitude ⇒ double the extracted mode (linear
    // regime end-to-end).
    let domain = Domain::centered_cube(8.0);
    let run = |amp: f64| {
        let wave = LinearWaveData::new(amp, 0.0, 2.0, 1.0);
        let mut solver = unigrid_solver(
            SolverConfig { extract_every: 1, ..Default::default() },
            domain,
            2,
            move |p, out| wave.evaluate(p, out),
        );
        let sphere = ExtractionSphere::new(4.0, product_rule(6, 12));
        solver.add_extractor(ModeExtractor::new(sphere, vec![(2, 2)]));
        for _ in 0..4 {
            solver.step();
        }
        solver.extractors[0].mode(2, 2).unwrap().clone()
    };
    let a = run(1e-4);
    let b = run(2e-4);
    for (x, y) in a.values.iter().zip(b.values.iter()) {
        if x.norm() < 1e-12 {
            continue;
        }
        let ratio = y.norm() / x.norm();
        assert!((ratio - 2.0).abs() < 0.05, "nonlinear response: ratio {ratio}");
    }
}

#[test]
fn strong_field_puncture_short_evolution_is_stable() {
    use gw_bssn::init::PunctureData;
    let domain = Domain::centered_cube(16.0);
    let data = PunctureData::binary(1.0, 6.0);
    let mesh = uniform_mesh(domain, 3);
    let d2 = data.clone();
    let mut solver =
        GwSolver::new(SolverConfig::default(), mesh, move |p, out| d2.evaluate(p, out));
    let u0 = solver.state();
    assert!(u0.linf(var::ALPHA) <= 1.0);
    for _ in 0..4 {
        solver.step();
    }
    let u = solver.state();
    // No blow-up; gauge fields responded; χ stays positive at octant
    // centers (punctures are off grid-point by construction of the grid).
    assert!(u.linf_all().is_finite());
    assert!(u.linf(var::K) > 1e-6, "strong-field K response expected");
    assert!(u.linf_all() < 50.0, "short evolution must remain bounded");
}

#[test]
fn energy_leaves_the_domain_through_sommerfeld() {
    // A compact pulse near the boundary exits; total wave content decays
    // once the packet crosses the extraction radius... monitor the field
    // max decreasing after passage.
    let domain = Domain::centered_cube(8.0);
    let wave = LinearWaveData::new(1e-3, 3.5, 1.5, 1.0); // heading to +z boundary
    let mesh = uniform_mesh(domain, 2);
    let mut solver = GwSolver::new(SolverConfig::default(), mesh, |p, out| wave.evaluate(p, out));
    let dev0 = {
        let u = solver.state();
        (u.linf(var::gt(0, 0)) - 1.0).abs()
    };
    // 48 steps ≈ t = 8: the packet (center 3.5, width 1.5) fully crosses
    // the z = +8 boundary, and the radiative boundary damps the residue.
    for _ in 0..48 {
        solver.step();
    }
    let u = solver.state();
    let dev1 = (u.linf(var::gt(0, 0)) - 1.0).abs();
    assert!(
        dev1 < 0.8 * dev0,
        "outgoing packet must leave: initial dev {dev0:.3e}, final {dev1:.3e}"
    );
}

#[test]
fn weyl_psi4_matches_strain_second_derivative() {
    // Cross-validation of the two extraction pipelines: the direct Weyl
    // Ψ₄ recorded during an evolution must match the second time
    // derivative of the strain-mode series (wave-zone identity), which
    // is itself checked against the analytic packet elsewhere.
    let domain = Domain::centered_cube(8.0);
    let wave = LinearWaveData::new(1e-4, 0.0, 2.5, 0.9);
    let mesh = uniform_mesh(domain, 3);
    let mut solver =
        GwSolver::new(SolverConfig { extract_every: 1, ..Default::default() }, mesh, |p, out| {
            wave.evaluate(p, out)
        });
    let mk_sphere = || gw_waveform::ExtractionSphere::new(3.0, product_rule(6, 12));
    solver.add_extractor(ModeExtractor::new(mk_sphere(), vec![(2, 2)]));
    solver.add_psi4_extractor(gw_waveform::Psi4Extractor::new(mk_sphere(), vec![(2, 2)]));
    for _ in 0..10 {
        solver.step();
    }
    let strain = solver.extractors[0].mode(2, 2).unwrap();
    let psi4_from_ddot = psi4_from_strain(strain);
    let psi4_weyl = solver.psi4_extractors[0].mode(2, 2).unwrap();
    // Compare over the common interior samples.
    let mut max_rel = 0.0f64;
    let mut scale = 0.0f64;
    for (t, v) in psi4_from_ddot.times.iter().zip(psi4_from_ddot.values.iter()) {
        let w = psi4_weyl.sample(*t);
        scale = scale.max(w.norm());
        max_rel = max_rel.max((v.re - w.re).hypot(v.im - w.im));
    }
    assert!(scale > 1e-8, "Ψ₄ signal must be present (scale {scale:.3e})");
    assert!(
        max_rel < 0.25 * scale,
        "Weyl and strain-ddot Ψ₄ must agree in the wave zone: diff {max_rel:.3e} vs scale {scale:.3e}"
    );
}
