//! AMR machinery integration: refine → balance → mesh → scatter →
//! evolve → regrid round trips, plus property-based tests on the octree
//! invariants that the whole pipeline rests on.

use gw_bssn::init::LinearWaveData;
use gw_core::regrid::transfer_state;
use gw_core::solver::{fill_field, GwSolver, SolverConfig};
use gw_integration_tests::{adaptive_mesh, uniform_mesh};
use gw_mesh::Mesh;
use gw_octree::{
    balance_octree, complete_octree, is_balanced, refine_loop, BalanceMode, Domain,
    InterpErrorRefiner, MortonKey, NeighborQuery, MAX_LEVEL,
};
use proptest::prelude::*;

#[test]
fn wave_on_amr_matches_wave_on_uniform_where_resolved() {
    // Evolve the same packet on a uniform level-3 grid and on an AMR grid
    // whose finest level is 3 around the packet: in the refined region
    // the solutions must agree closely.
    let domain = Domain::centered_cube(8.0);
    let wave = LinearWaveData::new(1e-4, 0.0, 1.5, 0.8);
    let steps = 4;

    let mut uni = GwSolver::new(SolverConfig::default(), uniform_mesh(domain, 3), |p, out| {
        wave.evaluate(p, out)
    });
    let refiner = InterpErrorRefiner::new(move |p: [f64; 3]| wave.h_plus(p[2], 0.0), 1e-5, 2, 3);
    let leaves = refine_loop(&[MortonKey::root()], &domain, &refiner, BalanceMode::Full, 8);
    let amr_mesh = Mesh::build(domain, &leaves);
    assert!(amr_mesh.n_octants() < uni.mesh.n_octants(), "AMR must be cheaper");
    let mut amr = GwSolver::new(SolverConfig::default(), amr_mesh, |p, out| wave.evaluate(p, out));
    for _ in 0..steps {
        uni.step();
    }
    // Match times: AMR dt may differ (same finest level ⇒ same dt here).
    assert!((uni.dt() - amr.dt()).abs() < 1e-12);
    for _ in 0..steps {
        amr.step();
    }
    let uu = uni.state();
    let ua = amr.state();
    // Compare gt_xx at octant centers of the AMR grid's finest region.
    let l = gw_stencil::patch::PatchLayout::octant();
    let mut max_diff = 0.0f64;
    let mut compared = 0;
    for (oct, info) in amr.mesh.octants.iter().enumerate() {
        if info.level < 3 {
            continue;
        }
        let p = amr.mesh.point_coords(oct, 3, 3, 3);
        if p.iter().any(|c| c.abs() > 4.0) {
            continue;
        }
        let a = ua.block(gw_expr::symbols::var::gt(0, 0), oct)[l.idx(3, 3, 3)];
        let uoct = uni.mesh.locate(p).unwrap();
        let q = uni.mesh.point_coords(uoct, 3, 3, 3);
        // Centers coincide only when the octants coincide; sample via
        // interpolation otherwise.
        let b = if (q[0] - p[0]).abs() < 1e-12 && (q[1] - p[1]).abs() < 1e-12 {
            uu.block(gw_expr::symbols::var::gt(0, 0), uoct)[l.idx(3, 3, 3)]
        } else {
            gw_waveform::sphere::interpolate(&uni.mesh, &uu, gw_expr::symbols::var::gt(0, 0), p)
        };
        max_diff = max_diff.max((a - b).abs());
        compared += 1;
    }
    assert!(compared > 10, "need a meaningful comparison set");
    assert!(
        max_diff < 2e-6,
        "AMR and uniform solutions must agree in the resolved region: {max_diff:.3e}"
    );
}

#[test]
fn repeated_regrid_preserves_smooth_state() {
    // Regrid back and forth (refine ↔ coarsen) and confirm a smooth
    // state survives with only interpolation-level changes.
    let domain = Domain::centered_cube(4.0);
    let m_coarse = uniform_mesh(domain, 2);
    let m_fine = uniform_mesh(domain, 3);
    let f = fill_field(&m_coarse, &|p, out: &mut [f64]| {
        for (v, o) in out.iter_mut().enumerate() {
            *o = (0.3 * p[0] + 0.1 * v as f64).sin() * (0.2 * p[1]).cos() + 0.1 * p[2];
        }
    });
    let up = transfer_state(&m_coarse, &f, &m_fine).unwrap();
    let down = transfer_state(&m_fine, &up, &m_coarse).unwrap();
    let up2 = transfer_state(&m_coarse, &down, &m_fine).unwrap();
    // up and up2 agree (projection is stable after the first cycle).
    for (a, b) in up.as_slice().iter().zip(up2.as_slice().iter()) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
}

#[test]
fn interface_sync_keeps_duplicates_consistent_during_evolution() {
    let domain = Domain::centered_cube(8.0);
    let mesh = adaptive_mesh(domain);
    let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
    let mut s = GwSolver::new(SolverConfig::default(), mesh, |p, out| wave.evaluate(p, out));
    for _ in 0..3 {
        s.step();
    }
    let u = s.state();
    for c in &s.mesh.syncs {
        for v in 0..24 {
            let a = u.block(v, c.src_oct as usize)[c.src_idx as usize];
            let b = u.block(v, c.dst_oct as usize)[c.dst_idx as usize];
            assert_eq!(a, b, "coarse-fine duplicate out of sync (var {v})");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Balancing any random complete octree yields a balanced complete
    /// octree that refines the input.
    #[test]
    fn prop_balance_postconditions(seeds in prop::collection::vec((0u32..64, 0u32..64, 0u32..64, 1u8..5), 1..12)) {
        let keys: Vec<MortonKey> = seeds
            .into_iter()
            .map(|(x, y, z, l)| {
                let side = 1u32 << (MAX_LEVEL - l);
                let cap = 1u32 << l;
                MortonKey::new((x % cap) * side, (y % cap) * side, (z % cap) * side, l)
            })
            .collect();
        let t = complete_octree(keys);
        let b = balance_octree(&t, BalanceMode::Full);
        prop_assert!(is_balanced(&b, BalanceMode::Full));
        // Refinement-only: every balanced leaf is contained in some input
        // leaf at an equal-or-coarser level.
        for leaf in &b {
            let covered = t.iter().any(|k| k.contains(leaf));
            prop_assert!(covered);
        }
    }

    /// Mesh construction on any balanced tree covers every non-boundary
    /// padding region with exactly one source op per region point.
    #[test]
    fn prop_mesh_scatter_covers(seed_x in 0u32..8, seed_y in 0u32..8, seed_z in 0u32..8, depth in 1u8..4) {
        let side = 1u32 << (MAX_LEVEL - depth);
        let anchor = MortonKey::new(seed_x % (1<<depth) * side, seed_y % (1<<depth) * side, seed_z % (1<<depth) * side, depth);
        let t = complete_octree(anchor.children().to_vec());
        let b = balance_octree(&t, BalanceMode::Full);
        let mesh = Mesh::build(Domain::unit(), &b);
        let q = NeighborQuery::new(&b);
        let _ = q;
        // Fill a linear field and scatter: all interior padding written.
        let f = fill_field(&mesh, &|p, out: &mut [f64]| {
            out.iter_mut().enumerate().for_each(|(v, o)| *o = p[0] + 2.0*p[1] - p[2] + v as f64);
        });
        let mut patches = gw_mesh::PatchField::zeros(24, mesh.n_octants());
        patches.fill(f64::NAN);
        gw_mesh::scatter::fill_patches_scatter(&mesh, &f, &mut patches);
        let boundary: std::collections::HashSet<(u32, [i8;3])> = mesh.boundary_regions.iter().copied().collect();
        let pl = gw_stencil::patch::PatchLayout::padded();
        for oct in 0..mesh.n_octants() {
            let patch = patches.patch(0, oct);
            for (i, j, k) in pl.iter() {
                let reg = |t: usize| -> i8 { if t < 3 { -1 } else if t < 10 { 0 } else { 1 } };
                let delta = [reg(i), reg(j), reg(k)];
                if delta == [0,0,0] || boundary.contains(&(oct as u32, delta)) { continue; }
                prop_assert!(!patch[pl.idx(i,j,k)].is_nan(), "unwritten padding oct {} {:?}", oct, (i,j,k));
            }
        }
    }
}
