//! Thread-count determinism matrix.
//!
//! The parallel patch pipeline promises bit-identical results at any
//! thread count: every parallel stage is a pure slot-write with a
//! single writer per slot, and every floating-point reduction combines
//! per-item partials in fixed index order (see DESIGN.md, "Threading
//! model"). This suite runs the same gauge-wave evolution at
//! `threads` = 1, 2, 8 and compares final states bit-for-bit, plus the
//! CRCs of full checkpoints (which also cover time/step bookkeeping).

use gw_bssn::init::LinearWaveData;
use gw_core::checkpoint;
use gw_core::solver::{GwSolver, SolverConfig};
use gw_expr::symbols::var;
use gw_integration_tests::adaptive_mesh;
use gw_octree::Domain;

/// The checkpoint's embedded body CRC-32 (the trailing word of format
/// v2). Comparing the *whole* stream's CRC would be vacuous: appending
/// a CRC to its own body pins the total to the CRC-32 residue constant
/// (0x2144df1c) for every valid checkpoint.
fn checkpoint_crc(solver: &GwSolver) -> u32 {
    let b = checkpoint::save(solver);
    let sl = b.as_slice();
    u32::from_le_bytes(sl[sl.len() - 4..].try_into().unwrap())
}

/// Evolve a gauge wave on an adaptive mesh (all three scatter kinds)
/// for `steps` steps with the requested worker count, returning the
/// solver for inspection. With `profiled`, a live observability probe
/// is installed first — spans and counters fire on every step.
fn evolve_probed(threads: usize, steps: usize, profiled: bool) -> GwSolver {
    let domain = Domain::centered_cube(8.0);
    let mesh = adaptive_mesh(domain);
    let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
    let config = SolverConfig { threads, ..Default::default() };
    let mut solver = GwSolver::new(config, mesh, move |p, out| wave.evaluate(p, out));
    if profiled {
        solver.set_probe(gw_obs::Probe::enabled());
    }
    for _ in 0..steps {
        solver.step();
    }
    solver
}

fn evolve(threads: usize, steps: usize) -> GwSolver {
    evolve_probed(threads, steps, false)
}

#[test]
fn evolution_is_bit_identical_across_thread_counts() {
    let reference = evolve(1, 6);
    let ref_bits: Vec<u64> = reference.state().as_slice().iter().map(|v| v.to_bits()).collect();
    let ref_crc = checkpoint_crc(&reference);
    let ref_h = reference.constraint_sample();
    assert!(reference.state().linf(var::gt(0, 0)) > 1.0, "wave content expected");

    for threads in [2usize, 8] {
        let run = evolve(threads, 6);
        assert_eq!(run.n_threads(), threads);
        let bits: Vec<u64> = run.state().as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            bits, ref_bits,
            "threads={threads}: final state must be bit-identical to the serial run"
        );
        assert_eq!(
            checkpoint_crc(&run),
            ref_crc,
            "threads={threads}: checkpoint CRC must match the serial run"
        );
        assert_eq!(
            run.constraint_sample().to_bits(),
            ref_h.to_bits(),
            "threads={threads}: constraint norm reduction must be order-fixed"
        );
    }
}

#[test]
fn profiling_never_perturbs_the_evolution() {
    // The observability layer is timing and counting only: a run with a
    // live probe must be bit-identical — state AND checkpoint body CRC —
    // to the unprofiled run, serial and threaded alike. This is the
    // guarantee that makes `--profile` safe on production runs.
    for threads in [1usize, 8] {
        let plain = evolve_probed(threads, 4, false);
        let profiled = evolve_probed(threads, 4, true);
        let plain_bits: Vec<u64> = plain.state().as_slice().iter().map(|v| v.to_bits()).collect();
        let prof_bits: Vec<u64> = profiled.state().as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            prof_bits, plain_bits,
            "threads={threads}: profiling must not perturb the state"
        );
        assert_eq!(
            checkpoint_crc(&profiled),
            checkpoint_crc(&plain),
            "threads={threads}: profiling must not perturb the checkpoint body"
        );
        // And the probe really was live (unless obs is compiled out).
        if profiled.probe().is_enabled() {
            assert_eq!(profiled.probe().counter(gw_obs::Counter::Steps), 4);
            assert!(profiled.probe().report().is_some(), "enabled probe reports a trace");
        }
    }
}

#[test]
fn checkpoint_roundtrip_preserves_determinism_across_thread_counts() {
    // Save at threads=1 mid-run, restore under threads=8, finish, and
    // compare against an uninterrupted serial run: restart points must
    // not introduce thread-count-dependent state either.
    let mut serial = evolve(1, 3);
    let cp = checkpoint::load(checkpoint::save(&serial)).expect("roundtrip");
    let mut resumed = checkpoint::restore(SolverConfig { threads: 8, ..Default::default() }, cp);
    for _ in 0..3 {
        serial.step();
        resumed.step();
    }
    assert_eq!(
        checkpoint_crc(&serial),
        checkpoint_crc(&resumed),
        "resume under a different thread count must stay bit-identical"
    );
    // Belt and braces: the full serialized streams agree byte for byte.
    assert_eq!(
        checkpoint::save(&serial).as_slice(),
        checkpoint::save(&resumed).as_slice(),
        "checkpoint byte streams must be identical"
    );
}
