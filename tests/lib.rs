//! Shared fixtures for the cross-crate integration tests.

use gw_mesh::Mesh;
use gw_octree::{balance_octree, complete_octree, BalanceMode, Domain, MortonKey};

/// A small uniform mesh.
pub fn uniform_mesh(domain: Domain, level: u8) -> Mesh {
    let mut leaves = vec![MortonKey::root()];
    for _ in 0..level {
        leaves = leaves.iter().flat_map(|k| k.children()).collect();
    }
    leaves.sort();
    Mesh::build(domain, &leaves)
}

/// A small adaptive mesh with all three interface kinds.
pub fn adaptive_mesh(domain: Domain) -> Mesh {
    let c0 = MortonKey::root().children()[0];
    let fine: Vec<MortonKey> = c0.children()[7].children().to_vec();
    let t = complete_octree(fine);
    let t = balance_octree(&t, BalanceMode::Full);
    Mesh::build(domain, &t)
}
