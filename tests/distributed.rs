//! Distributed-evolution integration: multi-rank runs against the
//! single-rank reference, ghost-plan properties, scaling-model inputs.

// The deprecated wrappers are exercised on purpose: they must keep
// delegating to the same implementation the `Run` builder drives.
#![allow(deprecated)]

use gw_bssn::init::LinearWaveData;
use gw_bssn::BssnParams;
use gw_comm::world::WorldConfig;
use gw_comm::{CommFaultPlan, GhostSchedule};
use gw_core::backend::{Backend, CpuBackend, RhsKind};
use gw_core::checkpoint::{latest_snapshot, load_distributed};
use gw_core::multi::{
    dependencies, evolve_distributed, evolve_distributed_cfg, evolve_distributed_resilient,
    DistributedError, KillSpec, RecoveryEvent, ResilienceConfig,
};
use gw_core::rk4::Rk4;
use gw_core::solver::fill_field;
use gw_core::supervisor::DegradationPolicy;
use gw_integration_tests::{adaptive_mesh, uniform_mesh};
use gw_octree::partition::partition_uniform;
use gw_octree::Domain;
use gw_perfmodel::scaling::{project_step, strong_efficiency, Network};
use std::time::Duration;

/// Fault-plan seeds for the chaos tests. CI sweeps more seeds by setting
/// `GW_CHAOS_SEED`; locally the default trio runs.
fn chaos_seeds() -> Vec<u64> {
    match std::env::var("GW_CHAOS_SEED").ok().and_then(|s| s.parse().ok()) {
        Some(seed) => vec![seed],
        None => vec![11, 12, 13],
    }
}

#[test]
fn four_ranks_match_reference_on_uniform_grid() {
    let domain = Domain::centered_cube(8.0);
    let mesh = uniform_mesh(domain, 2);
    let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
    let u0 = fill_field(&mesh, &|p, out: &mut [f64]| wave.evaluate(p, out));
    let params = BssnParams::default();
    let mut backend = CpuBackend::new(&mesh, params, RhsKind::Pointwise);
    backend.upload(&u0);
    let rk = Rk4::default();
    let dt = rk.timestep(&mesh);
    rk.step(&mut backend, &mesh, dt);
    let reference = backend.download();

    let result = evolve_distributed(&mesh, &u0, 4, 1, 0.25, params);
    for (a, b) in reference.as_slice().iter().zip(result.state.as_slice().iter()) {
        assert_eq!(a, b);
    }
}

#[test]
fn ghost_plan_covers_every_cross_dependency() {
    let domain = Domain::centered_cube(8.0);
    let mesh = adaptive_mesh(domain);
    let deps = dependencies(&mesh);
    for p in [2usize, 3, 5] {
        let part = partition_uniform(mesh.n_octants(), p);
        let plan = GhostSchedule::build(&part, deps.iter().copied());
        for &(src, dst) in &deps {
            let rs = part.owner_of_index(src as usize);
            let rd = part.owner_of_index(dst as usize);
            if rs == rd {
                continue;
            }
            assert!(
                plan.sends[rs][rd].contains(&src),
                "dep {src}->{dst} not covered by plan ({rs}->{rd})"
            );
        }
    }
}

#[test]
fn measured_traffic_matches_plan_prediction() {
    let domain = Domain::centered_cube(8.0);
    let mesh = adaptive_mesh(domain);
    let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
    let u0 = fill_field(&mesh, &|p, out: &mut [f64]| wave.evaluate(p, out));
    let ranks = 3;
    let steps = 2;
    let result = evolve_distributed(&mesh, &u0, ranks, steps, 0.25, BssnParams::default());
    // 5 exchanges per step, each shipping plan.send_bytes per rank.
    for r in 0..ranks {
        let expect = 5 * steps as u64 * result.plan.send_bytes(r, 24, 343);
        let got = result.traffic[r].1;
        assert_eq!(got, expect, "rank {r}: plan {expect} vs measured {got}");
    }
}

#[test]
fn seeded_message_faults_recovered_bit_identical() {
    // Dropped, truncated, and corrupted halo messages at a bounded rate
    // are *recovered* by the reliable delivery layer: the run completes
    // and is bit-identical to the fault-free run via retransmission —
    // under no circumstances a silently wrong state.
    let domain = Domain::centered_cube(8.0);
    let mesh = uniform_mesh(domain, 2);
    let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
    let u0 = fill_field(&mesh, &|p, out: &mut [f64]| wave.evaluate(p, out));
    let params = BssnParams::default();
    let reference = evolve_distributed(&mesh, &u0, 3, 2, 0.25, params);
    for seed in chaos_seeds() {
        for (drop, trunc, corrupt) in [(0.05, 0.0, 0.0), (0.0, 0.05, 0.0), (0.02, 0.02, 0.02)] {
            let cfg = WorldConfig {
                faults: Some(
                    CommFaultPlan::new(seed)
                        .with_drop_rate(drop)
                        .with_truncate_rate(trunc)
                        .with_corrupt_rate(corrupt),
                ),
                recv_timeout: Duration::from_secs(5),
                heartbeat_interval: Duration::from_millis(5),
                ..WorldConfig::default()
            };
            let result = evolve_distributed_cfg(&mesh, &u0, 3, 2, 0.25, params, cfg)
                .unwrap_or_else(|e| {
                    panic!("seed {seed} ({drop}/{trunc}/{corrupt}): not recovered: {e}")
                });
            for (a, b) in reference.state.as_slice().iter().zip(result.state.as_slice().iter()) {
                assert_eq!(a, b, "seed {seed}: recovery must be bit-identical");
            }
        }
    }
}

#[test]
fn unrecoverable_faults_surface_typed_errors_never_hang() {
    // Rates beyond the retransmit budget must end in a typed error well
    // before the receive deadline cascade — never a hang or a silently
    // wrong state.
    let domain = Domain::centered_cube(8.0);
    let mesh = uniform_mesh(domain, 2);
    let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
    let u0 = fill_field(&mesh, &|p, out: &mut [f64]| wave.evaluate(p, out));
    let cfg = WorldConfig {
        faults: Some(CommFaultPlan::new(chaos_seeds()[0]).with_drop_rate(1.0)),
        recv_timeout: Duration::from_secs(2),
        max_retransmits: 2,
        retry_backoff: Duration::from_millis(1),
        heartbeat_interval: Duration::from_millis(5),
        ..WorldConfig::default()
    };
    let err = evolve_distributed_cfg(&mesh, &u0, 3, 1, 0.25, BssnParams::default(), cfg)
        .expect_err("total loss cannot be recovered");
    let rendered = err.to_string();
    assert!(!rendered.is_empty());
}

#[test]
fn killed_rank_is_named_and_run_aborts_without_checkpoints() {
    // One rank fail-stops mid-evolution; survivors detect it via the
    // liveness view within the heartbeat cadence. With no retry budget
    // the run aborts with a typed error naming the dead rank — never a
    // hang (the whole test completes orders of magnitude below the 10 s
    // receive deadline it would burn per exchange if it were hanging).
    let domain = Domain::centered_cube(8.0);
    let mesh = uniform_mesh(domain, 2);
    let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
    let u0 = fill_field(&mesh, &|p, out: &mut [f64]| wave.evaluate(p, out));
    let resilience = ResilienceConfig {
        checkpoint_dir: None,
        checkpoint_every: 1,
        degradation: DegradationPolicy { courant_factor: 1.0, ko_boost: 0.0, max_retries: 0 },
        kill_once: Some(KillSpec { rank: 2, at_step: 1 }),
    };
    let cfg =
        WorldConfig { heartbeat_interval: Duration::from_millis(5), ..WorldConfig::default() };
    let started = std::time::Instant::now();
    let err = evolve_distributed_resilient(
        &mesh,
        &u0,
        3,
        2,
        0.25,
        BssnParams::default(),
        cfg,
        &resilience,
    )
    .expect_err("no retries allowed: the death must abort the run");
    assert!(started.elapsed() < Duration::from_secs(8), "detection must not hang");
    match &err {
        DistributedError::RetriesExhausted { last, .. } => {
            assert_eq!(last.dead_rank(), Some(2), "the dead rank is named: {last}");
        }
        other => panic!("expected RetriesExhausted naming rank 2, got {other:?}"),
    }
    assert!(err.to_string().contains("rank 2"), "rendered error names the rank: {err}");
}

#[test]
fn chaos_kill_plus_message_faults_recovers_via_manifest() {
    // The full gauntlet: seeded message faults the whole way through AND
    // a fail-stopped rank. The run rolls every survivor back to the last
    // committed manifest, replays with identity degradation, and — since
    // retransmission recovery and snapshot replay are both bit-exact —
    // finishes bit-identical to the undisturbed run.
    let domain = Domain::centered_cube(8.0);
    let mesh = uniform_mesh(domain, 2);
    let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
    let u0 = fill_field(&mesh, &|p, out: &mut [f64]| wave.evaluate(p, out));
    let params = BssnParams::default();
    let reference = evolve_distributed(&mesh, &u0, 3, 3, 0.25, params);
    for seed in chaos_seeds() {
        let dir = std::env::temp_dir().join(format!("gw_amr_chaos_{seed}"));
        let dir = dir.to_str().unwrap().to_string();
        let _ = std::fs::remove_dir_all(&dir);
        let resilience = ResilienceConfig {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 1,
            degradation: DegradationPolicy { courant_factor: 1.0, ko_boost: 0.0, max_retries: 2 },
            kill_once: Some(KillSpec { rank: 1, at_step: 2 }),
        };
        let cfg = WorldConfig {
            faults: Some(CommFaultPlan::new(seed).with_drop_rate(0.03).with_corrupt_rate(0.02)),
            recv_timeout: Duration::from_secs(5),
            heartbeat_interval: Duration::from_millis(5),
            ..WorldConfig::default()
        };
        let out = evolve_distributed_resilient(&mesh, &u0, 3, 3, 0.25, params, cfg, &resilience)
            .unwrap_or_else(|e| panic!("seed {seed}: chaos run must recover: {e}"));
        assert_eq!(out.retries, 1, "seed {seed}: one rollback for one death");
        match &out.events[..] {
            [RecoveryEvent::RolledBack { to_step: 2, cause }] => {
                assert_eq!(cause.dead_rank(), Some(1), "seed {seed}");
            }
            other => panic!("seed {seed}: expected one rollback to step 2, got {other:?}"),
        }
        for (a, b) in reference.state.as_slice().iter().zip(out.result.state.as_slice().iter()) {
            assert_eq!(a, b, "seed {seed}: manifest replay must be bit-identical");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn overlapped_chaos_matrix_matches_blocking_bitwise() {
    // The overlapped exchange must survive the same chaos the blocking
    // path does, and land on the *same bits*: for every seed and worker
    // count, a run with `overlap: true` under seeded drop/truncate/corrupt
    // faults must match the fault-free blocking run both in final state
    // and in the committed checkpoint bodies (manifest shard CRCs) — the
    // overlap window must never reorder a reduction or let a retransmitted
    // ghost land in a different slot.
    let domain = Domain::centered_cube(8.0);
    let mesh = uniform_mesh(domain, 2);
    let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
    let u0 = fill_field(&mesh, &|p, out: &mut [f64]| wave.evaluate(p, out));
    let params = BssnParams::default();

    let tmp = std::env::temp_dir();
    let ref_dir = tmp.join("gw_amr_overlap_ref").to_str().unwrap().to_string();
    let _ = std::fs::remove_dir_all(&ref_dir);
    let resilience_for = |dir: &str| ResilienceConfig {
        checkpoint_dir: Some(dir.to_string()),
        checkpoint_every: 1,
        degradation: DegradationPolicy { courant_factor: 1.0, ko_boost: 0.0, max_retries: 2 },
        kill_once: None,
    };
    let reference = evolve_distributed_resilient(
        &mesh,
        &u0,
        3,
        2,
        0.25,
        params,
        WorldConfig::default(),
        &resilience_for(&ref_dir),
    )
    .expect("fault-free blocking reference");
    let ref_snap = latest_snapshot(&ref_dir)
        .expect("reference snapshot root readable")
        .expect("reference run committed a snapshot");
    let ref_ck = load_distributed(&ref_snap).expect("reference manifest loads");

    for seed in chaos_seeds() {
        for threads in [1usize, 2, 8] {
            let dir = tmp
                .join(format!("gw_amr_overlap_chaos_{seed}_{threads}"))
                .to_str()
                .unwrap()
                .to_string();
            let _ = std::fs::remove_dir_all(&dir);
            let cfg = WorldConfig {
                overlap: true,
                overlap_threads: threads,
                faults: Some(
                    CommFaultPlan::new(seed)
                        .with_drop_rate(0.02)
                        .with_truncate_rate(0.02)
                        .with_corrupt_rate(0.02),
                ),
                recv_timeout: Duration::from_secs(5),
                heartbeat_interval: Duration::from_millis(5),
                ..WorldConfig::default()
            };
            let out = evolve_distributed_resilient(
                &mesh,
                &u0,
                3,
                2,
                0.25,
                params,
                cfg,
                &resilience_for(&dir),
            )
            .unwrap_or_else(|e| {
                panic!("seed {seed} threads {threads}: overlapped chaos run must recover: {e}")
            });
            for (a, b) in
                reference.result.state.as_slice().iter().zip(out.result.state.as_slice().iter())
            {
                assert_eq!(a, b, "seed {seed} threads {threads}: state must match blocking");
            }
            let snap = latest_snapshot(&dir)
                .expect("overlap snapshot root readable")
                .unwrap_or_else(|| panic!("seed {seed} threads {threads}: no snapshot committed"));
            let ck = load_distributed(&snap).expect("overlap manifest loads");
            assert_eq!(
                ck.manifest.shard_crcs, ref_ck.manifest.shard_crcs,
                "seed {seed} threads {threads}: checkpoint body CRCs must match blocking"
            );
            assert_eq!(ck.manifest.shard_lens, ref_ck.manifest.shard_lens);
            assert_eq!(ck.manifest.steps_taken, ref_ck.manifest.steps_taken);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    let _ = std::fs::remove_dir_all(&ref_dir);
}

#[test]
fn zero_rate_fault_plan_is_bit_identical_to_fault_free() {
    // Installing a plan that never fires must not perturb results: the
    // fault-free path (headers included) is the same arithmetic.
    let domain = Domain::centered_cube(8.0);
    let mesh = uniform_mesh(domain, 2);
    let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
    let u0 = fill_field(&mesh, &|p, out: &mut [f64]| wave.evaluate(p, out));
    let params = BssnParams::default();
    let reference = evolve_distributed(&mesh, &u0, 3, 2, 0.25, params);
    let cfg = WorldConfig {
        faults: Some(CommFaultPlan::new(99)), // zero rates
        ..WorldConfig::default()
    };
    let with_plan = evolve_distributed_cfg(&mesh, &u0, 3, 2, 0.25, params, cfg).unwrap();
    for (a, b) in reference.state.as_slice().iter().zip(with_plan.state.as_slice().iter()) {
        assert_eq!(a, b, "zero-rate plan must not change the evolution");
    }
    assert_eq!(reference.traffic, with_plan.traffic);
}

#[test]
fn scaling_model_consumes_real_plans() {
    // Feed the scaling model with the actual measured plan of an
    // adaptive mesh — the Fig. 17 pipeline end to end.
    let domain = Domain::centered_cube(8.0);
    let mesh = adaptive_mesh(domain);
    let deps = dependencies(&mesh);
    let n = mesh.n_octants();
    let net = Network::gpu_interconnect();
    let ps = [1usize, 2, 4];
    let mut times = Vec::new();
    for &p in &ps {
        let part = partition_uniform(n, p);
        let plan = GhostSchedule::build(&part, deps.iter().copied());
        let work: Vec<f64> = (0..p).map(|r| 1e-3 * part.range(r).len() as f64 / n as f64).collect();
        times.push(project_step(&work, &plan, &net, 24, 343, 5).total());
    }
    let eff = strong_efficiency(&ps, &times);
    assert!((eff[0] - 1.0).abs() < 1e-12);
    assert!(eff.iter().all(|&e| e > 0.0 && e <= 1.0 + 1e-9), "{eff:?}");
}
