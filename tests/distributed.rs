//! Distributed-evolution integration: multi-rank runs against the
//! single-rank reference, ghost-plan properties, scaling-model inputs.

use gw_bssn::init::LinearWaveData;
use gw_bssn::BssnParams;
use gw_comm::world::WorldConfig;
use gw_comm::{CommFaultPlan, GhostSchedule};
use gw_core::backend::{Backend, CpuBackend, RhsKind};
use gw_core::multi::{dependencies, evolve_distributed, evolve_distributed_cfg};
use gw_core::rk4::Rk4;
use gw_core::solver::fill_field;
use gw_integration_tests::{adaptive_mesh, uniform_mesh};
use gw_octree::partition::partition_uniform;
use gw_octree::Domain;
use gw_perfmodel::scaling::{project_step, strong_efficiency, Network};
use std::time::Duration;

#[test]
fn four_ranks_match_reference_on_uniform_grid() {
    let domain = Domain::centered_cube(8.0);
    let mesh = uniform_mesh(domain, 2);
    let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
    let u0 = fill_field(&mesh, &|p, out: &mut [f64]| wave.evaluate(p, out));
    let params = BssnParams::default();
    let mut backend = Backend::Cpu(CpuBackend::new(&mesh, params, RhsKind::Pointwise));
    backend.upload(&u0);
    let rk = Rk4::default();
    let dt = rk.timestep(&mesh);
    rk.step(&mut backend, &mesh, dt);
    let reference = backend.download();

    let result = evolve_distributed(&mesh, &u0, 4, 1, 0.25, params);
    for (a, b) in reference.as_slice().iter().zip(result.state.as_slice().iter()) {
        assert_eq!(a, b);
    }
}

#[test]
fn ghost_plan_covers_every_cross_dependency() {
    let domain = Domain::centered_cube(8.0);
    let mesh = adaptive_mesh(domain);
    let deps = dependencies(&mesh);
    for p in [2usize, 3, 5] {
        let part = partition_uniform(mesh.n_octants(), p);
        let plan = GhostSchedule::build(&part, deps.iter().copied());
        for &(src, dst) in &deps {
            let rs = part.owner_of_index(src as usize);
            let rd = part.owner_of_index(dst as usize);
            if rs == rd {
                continue;
            }
            assert!(
                plan.sends[rs][rd].contains(&src),
                "dep {src}->{dst} not covered by plan ({rs}->{rd})"
            );
        }
    }
}

#[test]
fn measured_traffic_matches_plan_prediction() {
    let domain = Domain::centered_cube(8.0);
    let mesh = adaptive_mesh(domain);
    let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
    let u0 = fill_field(&mesh, &|p, out: &mut [f64]| wave.evaluate(p, out));
    let ranks = 3;
    let steps = 2;
    let result = evolve_distributed(&mesh, &u0, ranks, steps, 0.25, BssnParams::default());
    // 5 exchanges per step, each shipping plan.send_bytes per rank.
    for r in 0..ranks {
        let expect = 5 * steps as u64 * result.plan.send_bytes(r, 24, 343);
        let got = result.traffic[r].1;
        assert_eq!(got, expect, "rank {r}: plan {expect} vs measured {got}");
    }
}

#[test]
fn seeded_message_faults_are_detected_never_silent() {
    // With a seeded drop/truncate schedule the run must surface a
    // CommError — under no circumstances a silently wrong state.
    let domain = Domain::centered_cube(8.0);
    let mesh = uniform_mesh(domain, 2);
    let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
    let u0 = fill_field(&mesh, &|p, out: &mut [f64]| wave.evaluate(p, out));
    let params = BssnParams::default();
    for (seed, drop, trunc) in [(11u64, 0.3, 0.0), (12, 0.0, 0.3), (13, 0.15, 0.15)] {
        let cfg = WorldConfig {
            faults: Some(
                CommFaultPlan::new(seed)
                    .with_drop_rate(drop)
                    .with_truncate_rate(trunc)
                    .with_max_faults(4),
            ),
            recv_timeout: Duration::from_secs(2),
        };
        let r1 = evolve_distributed_cfg(&mesh, &u0, 3, 2, 0.25, params, cfg);
        let r2 = evolve_distributed_cfg(&mesh, &u0, 3, 2, 0.25, params, cfg);
        // The fault *schedule* is deterministic (unit-tested in gw-comm);
        // which rank's error is reported first can vary with thread
        // timing once a faulted rank aborts and its peers time out. The
        // invariant is: a faulted run NEVER returns Ok.
        assert!(
            r1.is_err() && r2.is_err(),
            "seed {seed}: faulted exchange must be detected, not absorbed \
             (got {:?} / {:?})",
            r1.as_ref().err(),
            r2.as_ref().err()
        );
    }
}

#[test]
fn zero_rate_fault_plan_is_bit_identical_to_fault_free() {
    // Installing a plan that never fires must not perturb results: the
    // fault-free path (headers included) is the same arithmetic.
    let domain = Domain::centered_cube(8.0);
    let mesh = uniform_mesh(domain, 2);
    let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
    let u0 = fill_field(&mesh, &|p, out: &mut [f64]| wave.evaluate(p, out));
    let params = BssnParams::default();
    let reference = evolve_distributed(&mesh, &u0, 3, 2, 0.25, params);
    let cfg = WorldConfig {
        faults: Some(CommFaultPlan::new(99)), // zero rates
        ..WorldConfig::default()
    };
    let with_plan = evolve_distributed_cfg(&mesh, &u0, 3, 2, 0.25, params, cfg).unwrap();
    for (a, b) in reference.state.as_slice().iter().zip(with_plan.state.as_slice().iter()) {
        assert_eq!(a, b, "zero-rate plan must not change the evolution");
    }
    assert_eq!(reference.traffic, with_plan.traffic);
}

#[test]
fn scaling_model_consumes_real_plans() {
    // Feed the scaling model with the actual measured plan of an
    // adaptive mesh — the Fig. 17 pipeline end to end.
    let domain = Domain::centered_cube(8.0);
    let mesh = adaptive_mesh(domain);
    let deps = dependencies(&mesh);
    let n = mesh.n_octants();
    let net = Network::gpu_interconnect();
    let ps = [1usize, 2, 4];
    let mut times = Vec::new();
    for &p in &ps {
        let part = partition_uniform(n, p);
        let plan = GhostSchedule::build(&part, deps.iter().copied());
        let work: Vec<f64> = (0..p).map(|r| 1e-3 * part.range(r).len() as f64 / n as f64).collect();
        times.push(project_step(&work, &plan, &net, 24, 343, 5).total());
    }
    let eff = strong_efficiency(&ps, &times);
    assert!((eff[0] - 1.0).abs() < 1e-12);
    assert!(eff.iter().all(|&e| e > 0.0 && e <= 1.0 + 1e-9), "{eff:?}");
}
