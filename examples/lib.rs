//! Shared helpers for the runnable examples.
//!
//! The binaries in this package exercise the `gw-amr` public API on the
//! scenarios the paper motivates:
//!
//! * `quickstart` — the whole pipeline in one page of code.
//! * `wave_propagation` — GW packet propagation with a convergence study
//!   against the analytic solution.
//! * `binary_inspiral` — BBH puncture grids, short strong-field
//!   evolution, regridding as the punctures move.
//! * `codegen_explorer` — the Table-II code-generation design space.

/// Pretty-print a waveform series as (t, re, im) rows.
pub fn print_series(name: &str, s: &gw_waveform::WaveformSeries, stride: usize) {
    println!("\n{name} ({} samples):", s.len());
    println!("  {:>8}  {:>13}  {:>13}", "t", "Re", "Im");
    for i in (0..s.len()).step_by(stride.max(1)) {
        println!("  {:8.3}  {:+.6e}  {:+.6e}", s.times[i], s.values[i].re, s.values[i].im);
    }
}

/// Simple fixed-width histogram of octant levels.
pub fn print_level_histogram(mesh: &gw_mesh::Mesh) {
    let mut counts = std::collections::BTreeMap::new();
    for o in &mesh.octants {
        *counts.entry(o.level).or_insert(0usize) += 1;
    }
    println!("octant levels:");
    for (l, c) in counts {
        println!("  level {l:2}: {c:6}  {}", "#".repeat((c as f64).log2().max(1.0) as usize));
    }
}
