//! Wave-propagation convergence study.
//!
//! Evolves a linearized GW packet on uniform grids of increasing
//! resolution and on ε-refined AMR grids, comparing against the
//! closed-form solution h₊(z − t) — the experiment behind the Fig. 19
//! substitution, plus a grid-convergence-order measurement.

use gw_bssn::init::LinearWaveData;
use gw_core::solver::{GwSolver, SolverConfig};
use gw_core::unigrid::unigrid_solver;
use gw_mesh::Mesh;
use gw_octree::{refine_loop, BalanceMode, Domain, InterpErrorRefiner, MortonKey};
use gw_stencil::patch::PatchLayout;

/// L∞ error of γ̃_xx against the analytic translation, interior only.
fn wave_error(solver: &GwSolver, wave: &LinearWaveData) -> f64 {
    let u = solver.state();
    let l = PatchLayout::octant();
    let t = solver.time;
    let mut err = 0.0f64;
    for oct in 0..solver.mesh.n_octants() {
        for (i, j, k) in l.iter() {
            let p = solver.mesh.point_coords(oct, i, j, k);
            if p.iter().any(|c| c.abs() > 4.5) {
                continue;
            }
            let got = u.block(gw_expr::symbols::var::gt(0, 0), oct)[l.idx(i, j, k)];
            let expect = 1.0 + wave.h_plus(p[2], t);
            err = err.max((got - expect).abs());
        }
    }
    err
}

fn main() {
    let domain = Domain::centered_cube(8.0);
    let amp = 1e-4;
    let wave = LinearWaveData::new(amp, 0.0, 2.5, 0.9);
    let horizon = 0.8; // evolve to t = 0.8 on every grid

    println!("== uniform-grid convergence (error vs analytic at t = {horizon}) ==");
    let mut prev_err: Option<f64> = None;
    for level in [2u8, 3] {
        let mut s =
            unigrid_solver(SolverConfig::default(), domain, level, |p, out| wave.evaluate(p, out));
        let dt = s.dt();
        let steps = (horizon / dt).round() as usize;
        for _ in 0..steps {
            s.step();
        }
        let err = wave_error(&s, &wave);
        let h = s.mesh.octants[0].h;
        print!("  level {level}: h = {h:.4}, {} octants, err = {err:.3e}", s.mesh.n_octants());
        if let Some(pe) = prev_err {
            let order: f64 = (pe / err).log2();
            println!(", observed order ~{order:.1}");
        } else {
            println!();
        }
        prev_err = Some(err);
    }

    println!("\n== AMR (ε-driven) vs analytic at t = {horizon} ==");
    for eps in [1e-3, 1e-4] {
        let refiner = InterpErrorRefiner::new(move |p: [f64; 3]| wave.h_plus(p[2], 0.0), eps, 2, 4);
        let leaves = refine_loop(&[MortonKey::root()], &domain, &refiner, BalanceMode::Full, 8);
        let mesh = Mesh::build(domain, &leaves);
        let n = mesh.n_octants();
        let mut s = GwSolver::new(SolverConfig::default(), mesh, |p, out| wave.evaluate(p, out));
        let dt = s.dt();
        let steps = (horizon / dt).round() as usize;
        for _ in 0..steps {
            s.step();
        }
        let err = wave_error(&s, &wave);
        println!(
            "  eps = {eps:.0e}: {n} octants ({} unknowns), err = {err:.3e}",
            s.mesh.unknowns(24)
        );
    }
    println!("\nSmaller eps / finer grids track the analytic packet more closely —");
    println!("the content of the paper's Fig. 19 convergence demonstration.");
}
