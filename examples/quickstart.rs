//! Quickstart: the full gw-amr pipeline in one page.
//!
//! Builds an adaptive octree around a linearized gravitational-wave
//! packet, evolves the 24-variable BSSN system on the simulated A100,
//! extracts the (2,2) strain mode on a sphere, and prints device-counter
//! statistics — Algorithm 1 of the paper, end to end.

use gw_bssn::init::LinearWaveData;
use gw_core::backend::RhsKind;
use gw_core::solver::{GwSolver, SolverConfig};
use gw_expr::schedule::ScheduleStrategy;
use gw_mesh::Mesh;
use gw_octree::{refine_loop, BalanceMode, Domain, InterpErrorRefiner, MortonKey};
use gw_waveform::{lebedev::product_rule, ExtractionSphere, ModeExtractor};

fn main() {
    // 1. The physical setup: a weak GW packet travelling along z.
    let domain = Domain::centered_cube(8.0);
    let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);

    // 2. Build an adaptive grid refined where the wave lives.
    let refiner = InterpErrorRefiner::new(move |p: [f64; 3]| wave.h_plus(p[2], 0.0), 1e-4, 2, 4);
    let leaves = refine_loop(&[MortonKey::root()], &domain, &refiner, BalanceMode::Full, 8);
    let mesh = Mesh::build(domain, &leaves);
    println!(
        "grid: {} octants, {} unknowns, adaptivity ratio {:.3}",
        mesh.n_octants(),
        mesh.unknowns(24),
        mesh.adaptivity_ratio()
    );
    gw_examples::print_level_histogram(&mesh);

    // 3. Solver on the simulated GPU with generated (staged+CSE) RHS code.
    let mut solver = GwSolver::new(
        SolverConfig {
            use_gpu: true,
            rhs_kind: RhsKind::Generated(ScheduleStrategy::StagedCse),
            extract_every: 1,
            ..Default::default()
        },
        mesh,
        |p, out| wave.evaluate(p, out),
    );
    let sphere = ExtractionSphere::new(4.0, product_rule(6, 12));
    solver.add_extractor(ModeExtractor::new(sphere, vec![(2, 2)]));

    // 4. Evolve.
    let steps = 10;
    println!("\nevolving {steps} RK4 steps, dt = {:.4} ...", solver.dt());
    for _ in 0..steps {
        solver.step();
    }
    println!("t = {:.3} after {} steps", solver.time, solver.steps_taken);

    // 5. The extracted waveform.
    let h22 = solver.extractors[0].mode(2, 2).unwrap();
    gw_examples::print_series("h22 strain mode", h22, 1);

    // 6. Device statistics (Algorithm 1's data-movement discipline).
    if let Some(c) = solver.backend.counters() {
        println!("\nsimulated-A100 counters:");
        println!("  kernel launches : {}", c.launches);
        println!("  global traffic  : {:.1} MB", c.global_bytes() as f64 / 1e6);
        println!("  flops           : {:.2} G", c.flops as f64 / 1e9);
        println!("  arithmetic int. : {:.2} F/B", c.arithmetic_intensity());
        println!(
            "  h2d / d2h       : {:.1} / {:.1} MB",
            c.h2d_bytes as f64 / 1e6,
            c.d2h_bytes as f64 / 1e6
        );
        println!(
            "  spills (gen'd)  : {:.1} MB",
            (c.spill_load_bytes + c.spill_store_bytes) as f64 / 1e6
        );
    }
    println!("\nok: quickstart completed");
}
