//! Binary-black-hole puncture evolution.
//!
//! Builds the q = 1 Brandt–Brügmann puncture data with Bowen–York
//! momenta (the paper's BSSN_GR/tpid substitute), a puncture-refined AMR
//! grid (Fig. 3-style nested levels), evolves the strong-field system
//! for a short horizon with moving-puncture gauge, monitors constraints,
//! and demonstrates a regrid as the punctures orbit.

use gw_bssn::constraints;
use gw_bssn::init::PunctureData;
use gw_core::solver::{GwSolver, SolverConfig};
use gw_expr::symbols::{input_value, var, NUM_INPUTS, NUM_VARS};
use gw_mesh::Mesh;
use gw_octree::{refine_loop, BalanceMode, Domain, MortonKey, Puncture, PunctureRefiner};
use gw_stencil::patch::PatchLayout;

fn puncture_refiner(data: &PunctureData, finest: u8) -> PunctureRefiner {
    let ps = data
        .punctures
        .iter()
        .map(|b| Puncture {
            pos: b.pos,
            finest_level: finest,
            inner_radius: (b.mass * 1.5).max(0.3),
        })
        .collect();
    PunctureRefiner::new(ps, 2)
}

fn main() {
    let q = 1.0;
    let d = 6.0;
    let data = PunctureData::binary(q, d);
    println!(
        "q = {q} binary: m1 = {:.3} at x = {:+.2}, m2 = {:.3} at x = {:+.2}, P = ±{:.4}",
        data.punctures[0].mass,
        data.punctures[0].pos[0],
        data.punctures[1].mass,
        data.punctures[1].pos[0],
        data.punctures[0].momentum[1]
    );

    let domain = Domain::centered_cube(16.0);
    let finest = 6;
    let refiner = puncture_refiner(&data, finest);
    let leaves = refine_loop(&[MortonKey::root()], &domain, &refiner, BalanceMode::Full, 16);
    let mesh = Mesh::build(domain, &leaves);
    println!(
        "\ngrid: {} octants, {} unknowns (finest level {finest})",
        mesh.n_octants(),
        mesh.unknowns(24)
    );
    gw_examples::print_level_histogram(&mesh);

    let data2 = data.clone();
    let mut solver = GwSolver::new(SolverConfig { ..Default::default() }, mesh, move |p, out| {
        data2.evaluate(p, out)
    });

    // Initial diagnostics: lapse profile along the axis and constraint
    // residual at sample points.
    let u0 = solver.state();
    let l = PatchLayout::octant();
    println!("\nlapse α along the x axis (pre-collapsed ψ⁻²):");
    for &x in &[-6.0, -3.0, -1.5, 0.0, 1.5, 3.0, 6.0] {
        let oct = solver.mesh.locate([x, 0.05, 0.05]).unwrap();
        // Nearest grid point:
        let info = &solver.mesh.octants[oct];
        let i = (((x - info.origin[0]) / info.h).round() as usize).min(6);
        let a = u0.block(var::ALPHA, oct)[l.idx(i, 3, 3)];
        println!("  x = {x:+5.1}: α = {a:.4}");
    }

    let ham_rms = |solver: &GwSolver| -> f64 {
        // Algebraic Hamiltonian monitor on octant centers (derivative
        // terms omitted — tracks the strong-field amplitude).
        let u = solver.state();
        let mut acc = 0.0;
        let n = solver.mesh.n_octants();
        for oct in 0..n {
            let mut inputs = vec![0.0; NUM_INPUTS];
            for v in 0..NUM_VARS {
                inputs[input_value(v)] = u.block(v, oct)[l.idx(3, 3, 3)];
            }
            let h = constraints::hamiltonian(&inputs);
            acc += h * h;
        }
        (acc / n as f64).sqrt()
    };
    println!("\ninitial algebraic-Hamiltonian RMS: {:.3e}", ham_rms(&solver));

    // Evolve a short strong-field segment.
    let steps = 8;
    println!("evolving {steps} steps, dt = {:.5} ...", solver.dt());
    for s in 0..steps {
        solver.step();
        if s % 4 == 3 {
            let u = solver.state();
            println!(
                "  step {:2}: t = {:.4}, max|K| = {:.3e}, min α kept > 0: {}",
                s + 1,
                solver.time,
                u.linf(var::K),
                u.block(var::ALPHA, solver.mesh.locate([0.0, 0.05, 0.05]).unwrap())
                    .iter()
                    .all(|&a| a > 0.0)
            );
        }
    }
    println!("post-evolution algebraic-Hamiltonian RMS: {:.3e}", ham_rms(&solver));

    // Regrid for punctures that have moved along their orbit (Newtonian
    // phase advance as the track estimate — the paper regrids on the
    // moving-puncture locations).
    let omega = d.powf(-1.5);
    let phi = omega * solver.time;
    let moved = PunctureData::binary(q, d);
    let mut moved_refiner = puncture_refiner(&moved, finest);
    for p in &mut moved_refiner.punctures {
        let (x, y) = (p.pos[0], p.pos[1]);
        p.pos[0] = x * phi.cos() - y * phi.sin();
        p.pos[1] = x * phi.sin() + y * phi.cos();
    }
    let before = solver.mesh.n_octants();
    solver.regrid(&moved_refiner);
    println!(
        "\nregrid at t = {:.4}: {} -> {} octants ({} regrids performed)",
        solver.time,
        before,
        solver.mesh.n_octants(),
        solver.regrids
    );
    solver.step();
    println!("post-regrid step ok; t = {:.4}", solver.time);
    println!("\nok: binary_inspiral completed");
}
