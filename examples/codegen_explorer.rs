//! Code-generation design-space explorer.
//!
//! Interactively sweeps the Table-II design space: scheduling strategy ×
//! register budget, reporting DAG statistics, peak live temporaries,
//! spill bytes and executed tape throughput — the paper's section IV-B
//! analysis as a tool.

use gw_expr::bssn::{build_bssn_rhs, BssnParams};
use gw_expr::regalloc::simulate_spills;
use gw_expr::schedule::{schedule, ScheduleStrategy};
use gw_expr::symbols::NUM_INPUTS;
use gw_expr::tape::Tape;
use std::time::Instant;

fn main() {
    let rhs = build_bssn_rhs(BssnParams::default());
    let (nodes, edges) = rhs.graph.graph_stats(&rhs.outputs);
    println!("BSSN A-component computational graph");
    println!("  nodes: {nodes} (paper: 2516)");
    println!("  edges: {edges} (paper: 6708)");
    println!("  CSE temporaries: {}", rhs.graph.interior_count(&rhs.outputs));
    println!("  flops/point: {}", rhs.graph.flop_count(&rhs.outputs));

    let mut inputs = vec![0.01f64; NUM_INPUTS];
    inputs[0] = 1.0;
    inputs[7] = 1.0;
    inputs[9] = 1.0;
    inputs[12] = 1.0;
    inputs[14] = 1.0;

    println!("\nstrategy × register-budget sweep (spill bytes = loads + stores):");
    println!(
        "  {:>14} {:>9} {:>9} {:>10} {:>10} {:>10} {:>12}",
        "strategy", "max live", "slots", "R=32", "R=56", "R=128", "ns/point"
    );
    for strat in ScheduleStrategy::all() {
        let sch = schedule(&rhs.graph, &rhs.outputs, strat);
        let live = sch.max_live(&rhs.graph);
        let tape = Tape::compile(&rhs.graph, &sch, 56);
        let spills: Vec<u64> = [32usize, 56, 128]
            .iter()
            .map(|&r| simulate_spills(&rhs.graph, &sch, r).total_spill_bytes())
            .collect();
        // Execution throughput.
        let mut out = vec![0.0; tape.n_outputs];
        let mut slots = vec![0.0; tape.n_slots];
        for _ in 0..200 {
            tape.eval_into(&inputs, &mut out, &mut slots);
        }
        let n = 20_000;
        let t0 = Instant::now();
        for _ in 0..n {
            tape.eval_into(&inputs, &mut out, &mut slots);
        }
        let ns = t0.elapsed().as_secs_f64() * 1e9 / n as f64;
        println!(
            "  {:>14} {:>9} {:>9} {:>10} {:>10} {:>10} {:>12.0}",
            strat.name(),
            live,
            tape.n_slots,
            spills[0],
            spills[1],
            spills[2],
            ns
        );
    }

    println!("\nregister-budget sensitivity of the binary-reduce schedule:");
    let sch = schedule(&rhs.graph, &rhs.outputs, ScheduleStrategy::BinaryReduce);
    println!("  {:>5} {:>12} {:>12}", "R", "spill loads", "spill stores");
    for r in [16usize, 24, 32, 48, 56, 80, 128, 256] {
        let s = simulate_spills(&rhs.graph, &sch, r);
        println!("  {:>5} {:>12} {:>12}", r, s.spill_load_bytes, s.spill_store_bytes);
    }
    println!(
        "\nTakeaway (paper §IV-B): minimizing operations (CSE) is not the target when\n\
         spilling dominates — ordering for short live ranges (binary-reduce,\n\
         staged+CSE) cuts spill traffic and wins on the device."
    );
}
