//! Offline stand-in for the subset of the `bytes` crate this workspace
//! uses (see `vendor/README.md`): `Bytes`, `BytesMut`, and the little-
//! endian cursor operations of `Buf`/`BufMut` needed by the checkpoint
//! format. `Bytes` is a cheaply sliceable view over shared storage;
//! reading through `Buf` advances an internal cursor, matching the real
//! crate's semantics.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Immutable shared byte buffer with a read cursor.
#[derive(Clone, Debug)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn from_static(s: &'static [u8]) -> Self {
        Self::from(s.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sub-slice without copying the underlying storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self { data: Arc::new(v), start: 0, end }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Growable byte buffer for building messages.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        Self { data: Vec::with_capacity(n) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read-side cursor operations (little-endian subset).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, n: usize);
    fn chunk(&self) -> &[u8];

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Write-side operations (little-endian subset).
pub trait BufMut {
    fn put_slice(&mut self, s: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u32_le(0xdead_beef);
        b.put_u8(7);
        b.put_u64_le(42);
        b.put_f64_le(1.5);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 21);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slicing_shares_storage() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(..3);
        assert_eq!(s.as_slice(), &[0, 1, 2]);
        let t = b.slice(2..=4);
        assert_eq!(t.as_slice(), &[2, 3, 4]);
        assert_eq!(b.len(), 6);
    }
}
