//! Offline stand-in for the subset of `proptest` this workspace uses
//! (see `vendor/README.md`).
//!
//! Provides the `proptest!` macro, range/tuple/array/collection
//! strategies, `prop_map`, and the `prop_assert*`/`prop_assume!` macros,
//! generating cases from a deterministic seeded RNG (no wall-clock or OS
//! entropy — reruns are bit-reproducible, matching this repo's
//! determinism policy). No shrinking: a failing case reports its inputs
//! instead.

pub mod test_runner {
    /// Outcome of one generated case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: skip this case.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }

    /// Runner configuration (`cases` = number of generated inputs).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic splitmix64 generator.
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed from the test name and attempt index so every test and
        /// every case draws an independent, reproducible stream.
        pub fn for_case(name: &str, attempt: u64) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self(h ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in [0, n).
        pub fn index(&mut self, n: usize) -> usize {
            assert!(n > 0);
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    (self.start as u64).wrapping_add(rng.next_u64() % span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width range: every bit pattern is valid.
                        rng.next_u64() as $t
                    } else {
                        (lo as u64).wrapping_add(rng.next_u64() % span) as $t
                    }
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E), (A, B, C, D, E, F));
}

/// The `prop::` namespace (`prop::array`, `prop::collection`).
pub mod prop {
    pub mod array {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Array of `N` independent draws from one element strategy.
        pub struct UniformArray<S, const N: usize> {
            element: S,
        }

        impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
            type Value = [S::Value; N];
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                std::array::from_fn(|_| self.element.generate(rng))
            }
        }

        macro_rules! uniform_ctor {
            ($($name:ident => $n:literal),*) => {$(
                pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                    UniformArray { element }
                }
            )*};
        }

        uniform_ctor!(
            uniform2 => 2, uniform3 => 3, uniform4 => 4, uniform5 => 5,
            uniform6 => 6, uniform7 => 7, uniform8 => 8
        );
    }

    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::{Range, RangeInclusive};

        /// Length specification for [`vec`]; conversions exist only from
        /// `usize` ranges so untyped literals (`1..12`) infer `usize`,
        /// as with the real crate's `Into<SizeRange>` argument.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            /// Exclusive.
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                Self { lo: r.start, hi: r.end }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                Self { lo: *r.start(), hi: *r.end() + 1 }
            }
        }

        /// `Vec` strategy: draw a length, then that many elements.
        pub struct VecStrategy<S> {
            element: S,
            len: SizeRange,
        }

        pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, len: len.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                assert!(self.len.lo < self.len.hi, "empty size range");
                let n = self.len.lo + rng.index(self.len.hi - self.len.lo);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) at {}:{}",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs,
                file!(),
                line!()
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?}) at {}:{}",
                stringify!($a),
                stringify!($b),
                lhs,
                file!(),
                line!()
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (
        cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __executed: u32 = 0;
            let mut __attempt: u64 = 0;
            while __executed < __config.cases {
                __attempt += 1;
                assert!(
                    __attempt <= 32 * (__config.cases as u64),
                    "proptest {}: too many rejected cases",
                    stringify!($name)
                );
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __attempt,
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $(&$arg),+
                );
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                match __result {
                    Ok(()) => __executed += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => continue,
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed on case {}: {}\ninputs: {}",
                            stringify!($name), __attempt, msg, __inputs
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in -2.0f64..2.0, z in 0u8..=255) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            let _ = z; // full-width inclusive range: any u8 is valid
        }

        #[test]
        fn tuples_arrays_vecs_and_maps(
            t in (0u8..4, 1usize..5).prop_map(|(a, b)| (a as usize) * b),
            arr in prop::array::uniform6(-1.0f64..1.0),
            v in prop::collection::vec((0u32..10, 0u32..10), 2..8),
        ) {
            prop_assert!(t < 20);
            prop_assert_eq!(arr.len(), 6);
            prop_assert!(v.len() >= 2 && v.len() < 8);
            prop_assume!(!v.is_empty());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = prop::collection::vec(0u32..1000, 5..6);
        let a = strat.generate(&mut TestRng::for_case("det", 1));
        let b = strat.generate(&mut TestRng::for_case("det", 1));
        assert_eq!(a, b);
    }
}
