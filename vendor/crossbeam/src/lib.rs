//! Offline stand-in for the subset of `crossbeam` this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! API-compatible implementations of the handful of external items it
//! depends on (see `vendor/README.md`). Only `crossbeam::channel` is
//! provided: an MPMC unbounded channel built on `Mutex` + `Condvar`.
//! Semantics match the real crate for the operations used here: FIFO per
//! sender, blocking `recv`, disconnect detection when all peers drop, and
//! consuming iteration over a receiver.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned when sending into a channel with no receivers.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned when receiving from an empty, disconnected channel.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State { items: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueue a value; fails only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.queue.lock().unwrap();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.items.push_back(value);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Self { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.queue.lock().unwrap();
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.ready.wait(st).unwrap();
            }
        }

        /// Block until a value arrives, every sender is gone, or the
        /// timeout elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self.shared.ready.wait_timeout(st, deadline - now).unwrap();
                st = guard;
            }
        }

        /// Non-blocking pop.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.queue.lock().unwrap().items.pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Self { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    /// Consuming iteration: yields until the channel is empty and all
    /// senders have disconnected.
    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn disconnect_detected() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn timeout_fires() {
        let (_tx, rx) = unbounded::<u32>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got: Vec<u32> = rx.into_iter().collect();
        h.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
