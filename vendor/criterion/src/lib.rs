//! Offline stand-in for the subset of `criterion` this workspace uses
//! (see `vendor/README.md`). A minimal single-shot bench harness: each
//! `bench_function` runs a short warm-up, then times batches until the
//! measurement budget elapses and prints mean time per iteration. No
//! statistics, plots, or baselines — just enough to keep `cargo bench`
//! meaningful without the real crate.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value wrapper.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier (`function-name/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self { id: format!("{function}/{parameter}") }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-bench timing driver handed to bench closures.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// (iterations, elapsed) recorded by the last `iter` call.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Run `f` repeatedly: warm up, then measure.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            black_box(f());
        }
        let start = Instant::now();
        let deadline = start + self.measurement;
        let mut iters = 0u64;
        while Instant::now() < deadline {
            black_box(f());
            iters += 1;
        }
        self.result = Some((iters.max(1), start.elapsed()));
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub harness is time-budgeted,
    /// not sample-counted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.to_string(), f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher { warm_up: self.warm_up, measurement: self.measurement, result: None };
        f(&mut b);
        match b.result {
            Some((iters, elapsed)) => {
                let per = elapsed.as_secs_f64() / iters as f64;
                println!(
                    "{}/{}: {:>12} per iter ({} iters in {:.2?})",
                    self.name,
                    id,
                    format_time(per),
                    iters,
                    elapsed
                );
            }
            None => println!("{}/{}: no measurement taken", self.name, id),
        }
        let _ = &self.criterion;
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// The bench harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("bench", f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($fun:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($fun(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
    }
}
